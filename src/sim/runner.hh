/**
 * @file
 * Convenience harness: run one workload under each protocol (plus the
 * infinite-block-cache CC-NUMA baseline all figures normalize to) and
 * report normalized execution times, as in Figures 6-9.
 *
 * The comparison currency is registry-driven: ComparisonMatrix holds
 * the baseline plus one entry per ProtocolSpec it ran (by default
 * every registered protocol), so a newly registered policy protocol
 * shows up in quickstart, the smoke suite, and every example with no
 * further wiring. The fixed four-field ProtocolComparison survives as
 * a thin shim over a matrix restricted to the three paper systems.
 */

#ifndef RNUMA_SIM_RUNNER_HH
#define RNUMA_SIM_RUNNER_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/params.hh"
#include "common/stats.hh"
#include "proto/registry.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** Run one system over a workload (resets the workload first). */
RunStats runProtocol(const Params &params, const ProtocolSpec &spec,
                     Workload &wl);

/** Run a registered protocol by name (fatal when unknown). */
RunStats runProtocol(const Params &params, const std::string &name,
                     Workload &wl);

/** Legacy-enum convenience: one of the three paper systems. */
RunStats runProtocol(const Params &params, Protocol protocol,
                     Workload &wl);

/** Run the Figure 6 baseline: CC-NUMA with an infinite block cache. */
RunStats runInfiniteBaseline(const Params &params, Workload &wl);

/**
 * num/den as a normalized execution time. NaN when @p den is zero —
 * a degenerate (e.g. one-reference) workload reports a flagged
 * value the table/JSON sinks render as "nan"/null instead of
 * panicking mid-figure. The single normalization rule shared by
 * the comparison harness and the figure renderers.
 */
double normalizedTime(Tick num, Tick den);

/** One system's result inside a ComparisonMatrix. */
struct ComparisonEntry
{
    std::string id;   ///< stable spec id ("ccnuma", "rnuma-t16", ...)
    std::string name; ///< display name ("CC-NUMA")
    RunStats stats;
};

/**
 * An N-way comparison for one workload and parameter set: the
 * infinite-block-cache baseline plus one entry per spec, in the
 * order the specs were given (registration order for the default
 * all-registered selection). All normalized times are relative to
 * the baseline, as in Figure 6.
 */
struct ComparisonMatrix
{
    RunStats baseline; ///< CC-NUMA, infinite block cache
    std::vector<ComparisonEntry> entries;

    /** Entry by spec id; nullptr when the id did not run. */
    const ComparisonEntry *find(const std::string &id) const;

    /** Entry by spec id; fatal (throws under tests) when absent. */
    const ComparisonEntry &at(const std::string &id) const;

    /**
     * Execution time of @p id normalized to the baseline. NaN when
     * the baseline simulated zero ticks (degenerate workloads at
     * tiny scales report a flagged cell instead of panicking).
     */
    double norm(const std::string &id) const;

    /** min over @p ids of norm(id); fatal on an unknown id. */
    double bestOf(const std::vector<std::string> &ids) const;

    /**
     * The paper's yardstick: min(norm("ccnuma"), norm("scoma")) —
     * "the best of the two base protocols". Fatal when the matrix
     * did not run both.
     */
    double bestOfBase() const;

    /**
     * The entry with the lowest simulated time (ties resolve to the
     * earliest entry, so the result is deterministic). Fatal on an
     * empty matrix.
     */
    const ComparisonEntry &winner() const;

    /**
     * Relative loss of @p id vs the winner:
     * ticks(id)/ticks(winner) - 1. Zero for the winner itself;
     * baseline-independent, so it stays defined on degenerate
     * workloads.
     */
    double regret(const std::string &id) const;
};

/**
 * Run the baseline plus @p specs back to back on @p wl, serially.
 * An empty @p specs list means every registered protocol, in
 * registration order.
 */
ComparisonMatrix
compareAll(const Params &params, Workload &wl,
           const std::vector<ProtocolSpec> &specs = {});

/**
 * Run the baseline plus @p specs concurrently on up to @p jobs
 * threads (0 means hardware concurrency, as everywhere in this
 * codebase). Each run gets its own workload from @p make, so the
 * runs share no state; because the simulator is deterministic, the
 * result is bit-identical to the serial overload at any job count.
 * An empty @p specs list means every registered protocol.
 */
ComparisonMatrix
compareAll(const Params &params,
           const std::function<std::unique_ptr<Workload>()> &make,
           const std::vector<ProtocolSpec> &specs, std::size_t jobs);

/**
 * Resolve registry names (ids, display names, enum-era spellings)
 * into specs for compareAll; fatal (throws under tests) on an
 * unknown name.
 */
std::vector<ProtocolSpec>
protocolSpecs(const std::vector<std::string> &names);

/**
 * The legacy four-way comparison: a thin shim over a
 * ComparisonMatrix restricted to the three paper systems, kept so
 * pre-registry callers and the fig6/fig7 methodology read
 * unchanged.
 */
struct ProtocolComparison
{
    RunStats baseline; ///< CC-NUMA, infinite block cache
    RunStats ccNuma;
    RunStats sComa;
    RunStats rNuma;

    double normCC() const;
    double normSC() const;
    double normRN() const;

    /** min(normCC, normSC): "the best of the two protocols". */
    double bestOfBase() const;
};

/** Run all four configurations back to back (serial compareAll). */
ProtocolComparison compareProtocols(const Params &params, Workload &wl);

/**
 * Run the four configurations concurrently on up to @p jobs threads
 * (0 means hardware concurrency). Each run gets its own workload
 * from @p make; the result is bit-identical to the serial
 * compareProtocols() at any job count.
 */
ProtocolComparison
compareProtocols(const Params &params,
                 const std::function<std::unique_ptr<Workload>()> &make,
                 std::size_t jobs);

} // namespace rnuma

#endif // RNUMA_SIM_RUNNER_HH
