/**
 * @file
 * Convenience harness: run one workload under each protocol (plus the
 * infinite-block-cache CC-NUMA baseline all figures normalize to) and
 * report normalized execution times, as in Figures 6-9.
 */

#ifndef RNUMA_SIM_RUNNER_HH
#define RNUMA_SIM_RUNNER_HH

#include <functional>
#include <memory>

#include "common/params.hh"
#include "common/stats.hh"
#include "proto/registry.hh"
#include "workload/workload.hh"

namespace rnuma
{

/** Run one system over a workload (resets the workload first). */
RunStats runProtocol(const Params &params, const ProtocolSpec &spec,
                     Workload &wl);

/** Run a registered protocol by name (fatal when unknown). */
RunStats runProtocol(const Params &params, const std::string &name,
                     Workload &wl);

/** Legacy-enum convenience: one of the three paper systems. */
RunStats runProtocol(const Params &params, Protocol protocol,
                     Workload &wl);

/** Run the Figure 6 baseline: CC-NUMA with an infinite block cache. */
RunStats runInfiniteBaseline(const Params &params, Workload &wl);

/** A four-way comparison for one workload and parameter set. */
struct ProtocolComparison
{
    RunStats baseline; ///< CC-NUMA, infinite block cache
    RunStats ccNuma;
    RunStats sComa;
    RunStats rNuma;

    double normCC() const;
    double normSC() const;
    double normRN() const;

    /** min(normCC, normSC): "the best of the two protocols". */
    double bestOfBase() const;
};

/** Run all four configurations back to back. */
ProtocolComparison compareProtocols(const Params &params, Workload &wl);

/**
 * Run the four configurations concurrently on up to @p jobs threads
 * (0 means hardware concurrency, as everywhere in this codebase).
 * Each run gets its own workload from @p make, so the runs share no
 * state; because the simulator is deterministic, the result is
 * bit-identical to the serial compareProtocols() at any job count.
 */
ProtocolComparison
compareProtocols(const Params &params,
                 const std::function<std::unique_ptr<Workload>()> &make,
                 std::size_t jobs);

} // namespace rnuma

#endif // RNUMA_SIM_RUNNER_HH
