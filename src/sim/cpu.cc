#include "sim/cpu.hh"

// CpuState and CpuMap are header-only.
