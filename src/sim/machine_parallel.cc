/**
 * @file
 * The conservative parallel intra-cell engine (--intra-jobs N > 1).
 *
 * The machine's nodes are split into N contiguous partitions, each a
 * logical process with a private event queue and statistics shard,
 * synchronized by a time-window barrier: every round the engine
 * computes a shared window edge
 *
 *     edge = minNext + intraWindow * max(1, net->minLatency())
 *
 * (minNext = the earliest pending event machine-wide; minLatency is
 * the interconnect's smallest pairwise wire latency, the classic
 * conservative-lookahead bound), then worker threads drain each
 * partition's events strictly below the edge. An event is processed
 * inside its partition only when a side-effect-free confinement probe
 * (Node::missConfined, Rad::accessConfined, fetchConfined) proves all
 * its side effects — directory shard, home memory, NI/controller
 * occupancies, invalidation targets, victim writebacks — land on
 * nodes of the same partition. Everything else parks on the
 * partition's deferred list; at the window boundary the coordinator
 * (the calling thread, alone) replays the deferred misses in global
 * (time, cpu) order with full serial authority, releases the
 * application barrier if every live CPU has arrived, and starts the
 * next round.
 *
 * Determinism: partition assignment, per-partition event order, the
 * boundary sort key, and the window edges are all pure functions of
 * the run's inputs, so two runs at the same --intra-jobs produce
 * identical RunStats. Results are NOT bit-identical to the serial
 * engine (--intra-jobs 1, which bypasses this file entirely):
 * confined events in different partitions no longer interleave in
 * global time order, so resource-occupancy waits and directory state
 * evolve on a slightly different schedule, bounded by the window
 * width. Protocol event *counts* stay equivalent — the driver's
 * --compare-events gate checks exactly that (docs/ARCHITECTURE.md,
 * "Parallel intra-cell simulation", spells out the argument).
 */

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/machine.hh"

namespace rnuma
{

Machine::Partition &
Machine::partitionOf(CpuId cpu)
{
    return partitions_[cpu / cpusPerPartition_];
}

bool
Machine::missConfined(const Partition &pt, CpuId cpu,
                      const Ref &r) const
{
    Addr page = r.addr / p.pageSize;
    if (!place_.placed(page))
        return false; // first touch mutates global placement
    NodeId n = cpuMap.nodeOf(cpu);
    NodeId home = place_.homeOf(page);
    return nodes_[n]->missConfined(cpuMap.localOf(cpu), r.addr,
                                   r.write, home == n, pt.nodeLo,
                                   pt.nodeHi);
}

void
Machine::stepPartition(Partition &pt, CpuId cpu, Tick edge)
{
    CpuState &cs = cpus_[cpu];
    if (cs.done || cs.waiting)
        return;

    if (cs.hasPending) {
        // A fairness-deferred miss (think applied, L1 re-probed by
        // access itself); run it if confined, else hand it to the
        // coordinator.
        if (missConfined(pt, cpu, cs.pending)) {
            Ref r = cs.pending;
            cs.hasPending = false;
            cs.time = processMiss(cpu, r);
            pt.eq.schedule(cs.time, cpu);
        } else {
            pt.deferred.push_back({cs.time, cpu});
        }
        return;
    }

    while (true) {
        const Ref &r = wl.next(cpu);
        switch (r.kind) {
          case RefKind::InitTouch:
            if (place_.placed(r.addr / p.pageSize))
                continue; // placement already fixed: free no-op
            // First touches mutate global placement: coordinator.
            cs.hasPending = true;
            cs.pending = r;
            pt.deferred.push_back({cs.time, cpu});
            return;

          case RefKind::End:
            cs.done = true;
            pt.finished++;
            if (cs.time > pt.stats.ticks)
                pt.stats.ticks = cs.time;
            return;

          case RefKind::Barrier:
            pt.arrived++;
            if (cs.time > pt.arrivedMax)
                pt.arrivedMax = cs.time;
            cs.waiting = true;
            return;

          case RefKind::Mem: {
            cs.time += r.think;
            pt.stats.refs++;
            NodeId n = cpuMap.nodeOf(cpu);
            if (nodes_[n]->tryHit(cpuMap.localOf(cpu), r.addr,
                                  r.write)) {
                continue; // L1 hit: no shared state touched
            }
            // Same fairness rule as the serial engine, against the
            // partition's own queue; a think-time run past the edge
            // also re-enters through the queue so the next window
            // picks it up.
            if (cs.time >= edge ||
                (!pt.eq.empty() && pt.eq.peekTime() < cs.time)) {
                cs.hasPending = true;
                cs.pending = r;
                cs.pending.think = 0; // think already applied
                pt.eq.schedule(cs.time, cpu);
                return;
            }
            if (!missConfined(pt, cpu, r)) {
                cs.hasPending = true;
                cs.pending = r;
                cs.pending.think = 0;
                pt.deferred.push_back({cs.time, cpu});
                return;
            }
            cs.time = processMiss(cpu, r);
            pt.eq.schedule(cs.time, cpu);
            return;
          }
        }
    }
}

void
Machine::drainPartition(Partition &pt, Tick edge)
{
    Event e;
    while (pt.eq.popBefore(edge, e))
        stepPartition(pt, static_cast<CpuId>(e.tag), edge);
}

std::size_t
Machine::processDeferred(std::vector<Partition::Deferred> &batch)
{
    batch.clear();
    for (Partition &pt : partitions_) {
        batch.insert(batch.end(), pt.deferred.begin(),
                     pt.deferred.end());
        pt.deferred.clear();
    }
    // Global time order; each CPU defers at most once per round, so
    // (when, cpu) is a deterministic total order.
    std::sort(batch.begin(), batch.end(),
              [](const Partition::Deferred &a,
                 const Partition::Deferred &b) {
                  return a.when != b.when ? a.when < b.when
                                          : a.cpu < b.cpu;
              });
    for (const Partition::Deferred &d : batch) {
        CpuState &cs = cpus_[d.cpu];
        Ref r = cs.pending;
        cs.hasPending = false;
        if (r.kind == RefKind::InitTouch) {
            NodeId n = cpuMap.nodeOf(d.cpu);
            place_.touch(r.addr / p.pageSize, n);
            // Serial parity: step() consumes a run of consecutive
            // InitTouch entries in one uninterrupted activation, and
            // first-touch placement is order-sensitive, so apply the
            // whole run here rather than one touch per round (which
            // would round-robin the runs across CPUs and home shared
            // pages differently from the serial engine).
            while (wl.peek(d.cpu).kind == RefKind::InitTouch)
                place_.touch(wl.next(d.cpu).addr / p.pageSize, n);
            // The CPU resumes its stream where it left off.
            partitionOf(d.cpu).eq.schedule(cs.time, d.cpu);
            continue;
        }
        cs.time = processMiss(d.cpu, r);
        partitionOf(d.cpu).eq.schedule(cs.time, d.cpu);
    }
    return batch.size();
}

bool
Machine::releaseBarrierParallel()
{
    std::size_t fin = 0;
    std::size_t arrived = 0;
    Tick max_arrival = 0;
    for (Partition &pt : partitions_) {
        fin += pt.finished;
        arrived += pt.arrived;
        if (pt.arrivedMax > max_arrival)
            max_arrival = pt.arrivedMax;
    }
    std::size_t active = cpus_.size() - fin;
    if (arrived == 0 || arrived < active)
        return false;
    // Identical arithmetic to the serial maybeReleaseBarrier():
    // the release time depends only on the arrival times.
    Tick resume = max_arrival + p.barrierCost;
    stats_.barriers++;
    for (Partition &pt : partitions_) {
        pt.arrived = 0;
        pt.arrivedMax = 0;
    }
    for (CpuId c = 0; c < cpus_.size(); ++c) {
        CpuState &cs = cpus_[c];
        if (cs.done || !cs.waiting)
            continue;
        cs.waiting = false;
        cs.barrierWait += resume > cs.time ? resume - cs.time : 0;
        cs.time = resume;
        partitionOf(c).eq.schedule(resume, c);
    }
    return true;
}

RunStats
Machine::runParallel()
{
    const Tick lookahead = std::max<Tick>(1, net_->minLatency());
    const Tick window =
        lookahead * static_cast<Tick>(p.intraWindow);

    for (CpuId c = 0; c < cpus_.size(); ++c)
        partitionOf(c).eq.schedule(0, c);

    WorkerTeam team(partitions_.size());
    std::vector<Partition::Deferred> batch;

    while (true) {
        bool any = false;
        Tick min_next = 0;
        for (Partition &pt : partitions_) {
            if (pt.eq.empty())
                continue;
            Tick t = pt.eq.peekTime();
            if (!any || t < min_next)
                min_next = t;
            any = true;
        }
        if (!any) {
            std::size_t fin = 0;
            for (Partition &pt : partitions_)
                fin += pt.finished;
            if (fin == cpus_.size())
                break;
            RNUMA_PANIC("deadlock: only ", fin, " of ", cpus_.size(),
                        " cpus finished (mismatched barriers?)");
        }
        Tick edge = min_next + window;
        if (edge < min_next) // Tick overflow: drain everything
            edge = ~Tick{0};

        // Iterate drain -> replay to quiescence below this edge
        // before advancing the window. A single replay per window
        // would starve every deferring CPU for the rest of the round
        // (one cross-partition miss per window), systematically
        // thinning the sharing interactions — and hence invalidation
        // and remote-fetch counts — relative to the serial engine.
        // Re-draining after each replay lets replayed CPUs make full
        // progress inside the window, so the only divergence left is
        // the bounded within-window reordering.
        bool progress = true;
        while (progress) {
            team.run([this, edge](std::size_t w) {
                drainPartition(partitions_[w], edge);
            });
            std::size_t replayed = processDeferred(batch);
            bool released = releaseBarrierParallel();
            progress = replayed > 0 || released;
        }
    }

    // Deterministic reduction: shards merge in partition order, then
    // the machine-global figures come from the live structures.
    for (Partition &pt : partitions_) {
        stats_.mergeFrom(pt.stats);
        stats_.events += pt.eq.processed();
    }
    for (auto &n : nodes_)
        stats_.busWait += n->bus().waited();
    stats_.niWait = net_->waited();
    stats_.net = net_->stats();
    stats_.dirEntries = proto_->dirEntryCount();
    stats_.dirBits = proto_->dirStorageBits();
    return stats_;
}

} // namespace rnuma
