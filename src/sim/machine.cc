#include "sim/machine.hh"

#include "common/logging.hh"

namespace rnuma
{

namespace
{

/**
 * The calendar span for this run: the workload's largest think time
 * plus the longest common block-level service chain (an uncontended
 * remote fetch and a barrier release). Page operations and heavy
 * contention exceed it by design and overflow into the far heap.
 */
std::size_t
calendarSpanFor(const Params &p, const Workload &wl, Tick mean_wire)
{
    // The wire term comes from the network model's mean pairwise
    // latency, so topology machines size the calendar for their
    // actual service chains (equals netLatency for "constant").
    return EventQueue::autoWindow(wl.maxThink() +
                                  p.remoteFetch(mean_wire) +
                                  p.barrierCost);
}

} // namespace

Machine::Machine(const Params &params, const ProtocolSpec &spec,
                 Workload &wl_)
    : p(params), protocolId_(spec.id), wl(wl_),
      cpuMap{params.cpusPerNode}, net_(makeNetwork(params)),
      eq_(calendarSpanFor(params, wl_, net_->meanLatency()))
{
    p.validate();
    RNUMA_ASSERT(spec.valid(), "protocol spec '", spec.id,
                 "' has no Rad factory");
    RNUMA_ASSERT(wl.numCpus() == p.numCpus(),
                 "workload has ", wl.numCpus(), " cpus, machine has ",
                 p.numCpus());

    mems_.reserve(p.numNodes);
    std::vector<Memory *> mem_ptrs;
    for (NodeId n = 0; n < p.numNodes; ++n) {
        mems_.push_back(
            std::make_unique<Memory>(p.dramAccess, p.blockSize));
        mem_ptrs.push_back(mems_.back().get());
    }

    proto_ = std::make_unique<GlobalProtocol>(p, *net_, place_,
                                              *this, mem_ptrs);

    // The parallel engine shards the run statistics per partition so
    // worker threads never share a counter; each node binds its
    // partition's shard. Partitions are built first (and never
    // reallocated) because the nodes capture shard references.
    if (p.intraJobs > 1) {
        const std::size_t span =
            calendarSpanFor(p, wl, net_->meanLatency());
        const std::size_t nodesPer = p.numNodes / p.intraJobs;
        cpusPerPartition_ = nodesPer * p.cpusPerNode;
        partitions_.reserve(p.intraJobs);
        for (std::size_t j = 0; j < p.intraJobs; ++j) {
            partitions_.emplace_back(span);
            Partition &pt = partitions_.back();
            pt.nodeLo = static_cast<NodeId>(j * nodesPer);
            pt.nodeHi = static_cast<NodeId>((j + 1) * nodesPer);
            pt.cpuLo = static_cast<CpuId>(j * cpusPerPartition_);
            pt.cpuHi = static_cast<CpuId>((j + 1) * cpusPerPartition_);
        }
    }

    nodes_.reserve(p.numNodes);
    for (NodeId n = 0; n < p.numNodes; ++n) {
        RunStats &sink = partitions_.empty()
            ? stats_
            : partitions_[n / (p.numNodes / p.intraJobs)].stats;
        nodes_.push_back(std::make_unique<Node>(p, n, spec,
                                                *mems_[n], *proto_,
                                                sink));
    }

    cpus_.resize(p.numCpus());
}

Machine::Machine(const Params &params, Protocol protocol,
                 Workload &wl_)
    : Machine(params, builtinSpec(protocol), wl_)
{
}

bool
Machine::invalidateNodeCopy(NodeId node, Addr block)
{
    return nodes_[node]->invalidateAll(block);
}

void
Machine::downgradeNodeCopy(NodeId node, Addr block)
{
    nodes_[node]->downgradeAll(block);
}

void
Machine::maybeReleaseBarrier()
{
    std::size_t active = cpus_.size() - finished;
    if (barrierArrived == 0 || barrierArrived < active)
        return;
    Tick resume = barrierMax + p.barrierCost;
    stats_.barriers++;
    barrierArrived = 0;
    barrierMax = 0;
    for (CpuId c = 0; c < cpus_.size(); ++c) {
        CpuState &cs = cpus_[c];
        if (cs.done || !cs.waiting)
            continue;
        cs.waiting = false;
        cs.barrierWait += resume > cs.time ? resume - cs.time : 0;
        cs.time = resume;
        eq_.schedule(resume, c);
    }
}

RunStats &
Machine::statsFor(CpuId cpu)
{
    return partitions_.empty()
        ? stats_
        : partitions_[cpu / cpusPerPartition_].stats;
}

Tick
Machine::processMiss(CpuId cpu, const Ref &r)
{
    CpuState &cs = cpus_[cpu];
    NodeId n = cpuMap.nodeOf(cpu);
    Addr page = r.addr / p.pageSize;
    NodeId home = place_.touch(page, n);
    Tick before = cs.time;
    Tick done = nodes_[n]->access(cs.time, cpuMap.localOf(cpu), r.addr,
                                  r.write, home == n);
    cs.stalled += done - before;
    statsFor(cpu).stallCycles += done - before;
    return done;
}

void
Machine::step(CpuId cpu)
{
    CpuState &cs = cpus_[cpu];
    if (cs.done || cs.waiting)
        return;

    if (cs.hasPending) {
        // A deferred miss, now at the head of global time order.
        Ref r = cs.pending;
        cs.hasPending = false;
        cs.time = processMiss(cpu, r);
        eq_.schedule(cs.time, cpu);
        return;
    }

    while (true) {
        const Ref &r = wl.next(cpu);
        switch (r.kind) {
          case RefKind::InitTouch:
            // Pre-parallel placement: the toucher becomes the home.
            place_.touch(r.addr / p.pageSize, cpuMap.nodeOf(cpu));
            continue;

          case RefKind::End:
            cs.done = true;
            finished++;
            if (cs.time > stats_.ticks)
                stats_.ticks = cs.time;
            maybeReleaseBarrier();
            return;

          case RefKind::Barrier:
            barrierArrived++;
            if (cs.time > barrierMax)
                barrierMax = cs.time;
            cs.waiting = true;
            maybeReleaseBarrier();
            return;

          case RefKind::Mem: {
            cs.time += r.think;
            stats_.refs++;
            NodeId n = cpuMap.nodeOf(cpu);
            if (nodes_[n]->tryHit(cpuMap.localOf(cpu), r.addr,
                                  r.write)) {
                continue; // L1 hit: no shared state touched
            }
            // A miss interacts with shared resources (bus, memory,
            // directory, network); it must execute in global time
            // order. If this CPU has run ahead of the event queue,
            // defer the miss to its own event.
            if (!eq_.empty() && eq_.peekTime() < cs.time) {
                cs.hasPending = true;
                cs.pending = r;
                cs.pending.think = 0; // think already applied
                eq_.schedule(cs.time, cpu);
                return;
            }
            cs.time = processMiss(cpu, r);
            // Yield so other CPUs' events interleave before this
            // CPU's next shared-state interaction.
            eq_.schedule(cs.time, cpu);
            return;
          }
        }
    }
}

RunStats
Machine::run()
{
    RNUMA_ASSERT(!ran, "Machine::run() may only be called once");
    ran = true;

    if (!partitions_.empty())
        return runParallel();

    for (CpuId c = 0; c < cpus_.size(); ++c)
        eq_.schedule(0, c);

    while (!eq_.empty()) {
        Event e = eq_.pop();
        step(static_cast<CpuId>(e.tag));
    }

    if (finished != cpus_.size()) {
        RNUMA_PANIC("deadlock: only ", finished, " of ", cpus_.size(),
                    " cpus finished (mismatched barriers?)");
    }

    for (auto &n : nodes_)
        stats_.busWait += n->bus().waited();
    stats_.niWait = net_->waited();
    stats_.net = net_->stats();
    stats_.dirEntries = proto_->dirEntryCount();
    stats_.dirBits = proto_->dirStorageBits();
    stats_.events = eq_.processed();
    return stats_;
}

} // namespace rnuma
