#include "sim/node.hh"

#include "common/logging.hh"

namespace rnuma
{

Node::Node(const Params &params, NodeId id, const ProtocolSpec &spec,
           Memory &memory, GlobalProtocol &proto_, RunStats &stats_)
    : p(params), id_(id), proto(proto_), stats(stats_), mem(memory),
      bus_(params.busOccupancy), pageTable_(),
      vm_(params, id, stats_)
{
    l1s.reserve(p.cpusPerNode);
    for (std::size_t i = 0; i < p.cpusPerNode; ++i)
        l1s.emplace_back(p.l1Size, p.blockSize, p.l1Assoc);
    rad_ = makeRad(spec, p, id,
                   RadDeps{proto, stats, bus_, mem, vm_, pageTable_,
                           *this});
}

CacheLine *
Node::snoopOwned(std::size_t cpu, Addr block)
{
    for (std::size_t i = 0; i < l1s.size(); ++i) {
        if (i == cpu)
            continue;
        CacheLine *line = l1s[i].find(block);
        if (line && isDirty(line->state))
            return line;
    }
    return nullptr;
}

const CacheLine *
Node::snoopOwned(std::size_t cpu, Addr block) const
{
    return const_cast<Node *>(this)->snoopOwned(cpu, block);
}

void
Node::invalidateOtherL1s(std::size_t cpu, Addr block)
{
    for (std::size_t i = 0; i < l1s.size(); ++i)
        if (i != cpu)
            l1s[i].invalidate(block);
}

bool
Node::nodeHasWritePermission(Addr block, bool is_home) const
{
    if (is_home)
        return proto.onlyHolder(id_, block);
    return rad_->hasWritePermission(block);
}

void
Node::fillL1(Tick now, std::size_t cpu, Addr block, CacheState st)
{
    Cache &l1 = l1s[cpu];
    Cache::Victim v;
    CacheLine *nl = l1.allocate(block, v);
    nl->state = st;
    l1.touch(nl);
    if (!v.valid || !isDirty(v.state))
        return;
    // Dirty victim: write it back to the node-level holder. The
    // writeback buffer hides the latency from the CPU; occupancy of
    // the destination is still charged.
    NodeId vhome = proto.homeOf(v.addr);
    if (vhome == id_) {
        mem.access(now, v.addr);
    } else {
        rad_->l1Writeback(now, v.addr);
    }
}

bool
Node::tryHit(std::size_t cpu, Addr addr, bool write)
{
    Addr block = blockOf(addr);
    Cache &l1 = l1s[cpu];
    CacheLine *line = l1.find(block);
    if (!line || !line->valid())
        return false;
    if (write && line->state != CacheState::Modified)
        return false;
    l1.touch(line);
    stats.l1Hits++;
    return true;
}

bool
Node::fillConfined(std::size_t cpu, Addr block, NodeId lo,
                   NodeId hi) const
{
    Cache::Victim v = l1s[cpu].victimProbe(block);
    if (!v.valid || !isDirty(v.state))
        return true;
    NodeId vhome = proto.homeOf(v.addr);
    if (vhome == id_ || rad_->absorbsL1Writeback(blockOf(v.addr)))
        return true; // local memory or a local RAD structure absorbs
    // Falls through to a voluntary writeback to the victim's home.
    return vhome >= lo && vhome < hi;
}

bool
Node::missConfined(std::size_t cpu, Addr addr, bool write,
                   bool is_home, NodeId lo, NodeId hi) const
{
    Addr block = blockOf(addr);
    const Cache &l1 = l1s[cpu];
    const CacheLine *line = l1.find(block);

    if (line && line->valid()) {
        if (!write || line->state == CacheState::Modified)
            return true; // L1 hit: nothing shared touched
        // Upgrade path.
        if (nodeHasWritePermission(block, is_home))
            return true; // on-node ownership transfer
        if (is_home)
            return proto.fetchConfined(id_, block, true, lo, hi);
        // The RAD access may relocate the page, purging this line
        // and forcing a fresh fill — include the fill's victim.
        return rad_->accessConfined(addr, true, lo, hi) &&
            fillConfined(cpu, block, lo, hi);
    }

    // Miss path. The fill's dirty victim must stay in range.
    if (!fillConfined(cpu, block, lo, hi))
        return false;
    if (snoopOwned(cpu, block))
        return true; // on-node cache-to-cache transfer
    if (is_home)
        return proto.fetchConfined(id_, block, write, lo, hi);
    return rad_->accessConfined(addr, write, lo, hi);
}

Tick
Node::access(Tick now, std::size_t cpu, Addr addr, bool write,
             bool is_home)
{
    Addr block = blockOf(addr);
    Cache &l1 = l1s[cpu];
    CacheLine *line = l1.find(block);

    if (line && line->valid()) {
        if (!write || line->state == CacheState::Modified) {
            l1.touch(line);
            stats.l1Hits++;
            return now;
        }
        // Write hit on a non-writable line: permission upgrade.
        stats.upgrades++;
        Tick t = bus_.acquire(now) + p.busLatency;
        if (nodeHasWritePermission(block, is_home)) {
            // Another on-node structure holds the block writable; a
            // bus transaction transfers ownership locally.
            invalidateOtherL1s(cpu, block);
            line->state = CacheState::Modified;
            l1.touch(line);
            return t;
        }
        Tick done;
        if (is_home) {
            FetchResult res = proto.fetch(t, id_, block,
                                          ReqType::Upgrade);
            stats.invalidationsSent +=
                static_cast<std::uint64_t>(res.invalidations);
            if (res.invalidations > 0)
                stats.markSharedWrite(addr / p.pageSize);
            done = res.done;
        } else {
            RadAccess ra = rad_->access(t, addr, true, true);
            done = ra.done;
        }
        invalidateOtherL1s(cpu, block);
        // The RAD access may have relocated the page and purged this
        // very line; re-probe rather than resurrecting a stale
        // pointer.
        line = l1.find(block);
        if (line && line->valid()) {
            line->state = CacheState::Modified;
            l1.touch(line);
        } else {
            fillL1(done, cpu, block, CacheState::Modified);
        }
        return done;
    }

    // L1 miss.
    stats.l1Misses++;
    Tick t = bus_.acquire(now) + p.busLatency;

    // On-node snoop: MBus supports cache-to-cache transfer only for
    // owned lines; clean-shared copies cannot supply data
    // (Section 4).
    CacheLine *sup = snoopOwned(cpu, block);
    if (sup) {
        Tick done = t + p.sramAccess;
        stats.nodeTransfers++;
        if (write) {
            invalidateOtherL1s(cpu, block);
            fillL1(done, cpu, block, CacheState::Modified);
        } else {
            if (sup->state == CacheState::Modified)
                sup->state = CacheState::Owned;
            fillL1(done, cpu, block, CacheState::Shared);
        }
        return done;
    }

    Tick done;
    CacheState fill_state = write ? CacheState::Modified
                                  : CacheState::Shared;
    if (is_home) {
        FetchResult res = proto.fetch(t, id_, block,
                                      write ? ReqType::GetX
                                            : ReqType::GetS);
        stats.invalidationsSent +=
            static_cast<std::uint64_t>(res.invalidations);
        if (write && res.invalidations > 0)
            stats.markSharedWrite(addr / p.pageSize);
        if (res.threeHop)
            stats.forwards++;
        else
            stats.localFills++;
        done = res.done;
    } else {
        RadAccess ra = rad_->access(t, addr, write, false);
        done = ra.done;
        fill_state = ra.fillState;
    }
    if (write)
        invalidateOtherL1s(cpu, block);
    fillL1(done, cpu, block, fill_state);
    return done;
}

CacheState
Node::invalidateL1Block(Addr block)
{
    block = blockOf(block);
    CacheState strongest = CacheState::Invalid;
    auto rank = [](CacheState s) -> int {
        switch (s) {
          case CacheState::Modified:  return 4;
          case CacheState::Owned:     return 3;
          case CacheState::Exclusive: return 2;
          case CacheState::Shared:    return 1;
          case CacheState::Invalid:   return 0;
        }
        return 0;
    };
    for (auto &l1 : l1s) {
        CacheState s = l1.invalidate(block);
        if (rank(s) > rank(strongest))
            strongest = s;
    }
    return strongest;
}

bool
Node::invalidateAll(Addr block)
{
    block = blockOf(block);
    CacheState l1st = invalidateL1Block(block);
    bool rad_dirty = rad_->invalidateBlock(block);
    return isDirty(l1st) || rad_dirty;
}

void
Node::downgradeAll(Addr block)
{
    block = blockOf(block);
    for (auto &l1 : l1s) {
        CacheLine *line = l1.find(block);
        if (line && line->valid())
            line->state = CacheState::Shared;
    }
    rad_->downgradeBlock(block);
}

} // namespace rnuma
