#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace rnuma
{

void
EventQueue::schedule(Tick when, std::uint32_t tag)
{
    heap.push(Event{when, seqCounter++, tag});
}

Event
EventQueue::pop()
{
    RNUMA_ASSERT(!heap.empty(), "pop from empty event queue");
    Event e = heap.top();
    heap.pop();
    popCount++;
    return e;
}

} // namespace rnuma
