#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace rnuma
{

namespace
{

inline unsigned
ctz64(std::uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(x));
#else
    unsigned n = 0;
    while (!(x & 1)) {
        x >>= 1;
        ++n;
    }
    return n;
#endif
}

} // namespace

//--------------------------------------------------------------------------
// HeapEventQueue (reference implementation)
//--------------------------------------------------------------------------

void
HeapEventQueue::schedule(Tick when, std::uint32_t tag)
{
    heap.push(Event{when, seqCounter++, tag});
}

Event
HeapEventQueue::pop()
{
    RNUMA_ASSERT(!heap.empty(), "pop from empty event queue");
    Event e = heap.top();
    heap.pop();
    popCount++;
    return e;
}

bool
HeapEventQueue::popBefore(Tick limit, Event &out)
{
    if (heap.empty() || heap.top().when >= limit)
        return false;
    out = pop();
    return true;
}

//--------------------------------------------------------------------------
// EventQueue (indexed calendar over a far-future heap)
//--------------------------------------------------------------------------

namespace
{

/** Round up to a power of two, with a floor of 64 (one bit word). */
std::size_t
roundWindow(std::size_t want)
{
    RNUMA_ASSERT(want > 0, "event calendar window must be nonzero");
    // One bucket per tick: anything past a few million ticks of span
    // is a misconfiguration (and doubling past the top power of two
    // would wrap to zero and loop).
    constexpr std::size_t maxWindow = std::size_t{1} << 30;
    RNUMA_ASSERT(want <= maxWindow,
                 "event calendar window ", want, " exceeds the ",
                 maxWindow, "-tick ceiling");
    std::size_t w = 64;
    while (w < want)
        w *= 2;
    return w;
}

} // namespace

EventQueue::EventQueue(std::size_t window)
    : window_(roundWindow(window)), bitWords_(window_ / 64),
      near_(window_), bits_(bitWords_, 0)
{
}

std::size_t
EventQueue::autoWindow(Tick typical_max_delta)
{
    constexpr std::size_t cap = std::size_t{1} << 16;
    if (typical_max_delta >= cap)
        return cap;
    std::size_t want =
        static_cast<std::size_t>(typical_max_delta) + 1;
    return roundWindow(want < 64 ? 64 : want);
}

void
EventQueue::schedule(Tick when, std::uint32_t tag)
{
    Event e{when, seqCounter_++, tag};
    if (when < cursor_) {
        // Only reachable through direct API use; the simulator never
        // schedules before the event it is processing.
        past_.push(e);
    } else if (when - cursor_ < window_) {
        const std::size_t idx = when & (window_ - 1);
        Bucket &b = near_[idx];
        if (b.empty())
            bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        b.ev.push_back(e);
        nearCount_++;
        // Keep the memo pointing at the earliest bucket.
        if (hint_ != noHint && idx != hint_ &&
            when < near_[hint_].ev[near_[hint_].head].when)
            hint_ = idx;
    } else {
        far_.push(e);
    }
    size_++;
}

std::size_t
EventQueue::nextBucket() const
{
    const std::size_t start = cursor_ & (window_ - 1);
    const std::size_t w0 = start >> 6;
    const std::uint64_t high = bits_[w0] & (~0ULL << (start & 63));
    if (high)
        return (w0 << 6) + ctz64(high);
    // Wrap: the remaining candidates are offsets past `start` in
    // later words, or before it (near the window's far edge) back in
    // w0's low bits, which the i == bitWords_ pass picks up.
    for (std::size_t i = 1; i <= bitWords_; ++i) {
        const std::size_t w = (w0 + i) & (bitWords_ - 1);
        if (bits_[w])
            return (w << 6) + ctz64(bits_[w]);
    }
    RNUMA_PANIC("event calendar bitmap out of sync");
}

const Event *
EventQueue::nearFront() const
{
    if (nearCount_ == 0)
        return nullptr;
    if (hint_ == noHint)
        hint_ = nextBucket();
    const Bucket &b = near_[hint_];
    return &b.ev[b.head];
}

Event
EventQueue::pop()
{
    RNUMA_ASSERT(size_ > 0, "pop from empty event queue");
    Event e;
    if (!past_.empty()) {
        // Past events precede every near/far event (their when is
        // strictly below cursor_, the floor of both structures).
        e = past_.top();
        past_.pop();
    } else {
        const Event *n = nearFront();
        if (n && (far_.empty() || eventBefore(*n, far_.top()))) {
            e = *n;
            const std::size_t idx = e.when & (window_ - 1);
            Bucket &b = near_[idx];
            b.head++;
            if (b.empty()) {
                b.ev.clear();
                b.head = 0;
                bits_[idx >> 6] &=
                    ~(std::uint64_t{1} << (idx & 63));
                hint_ = noHint;
            }
            nearCount_--;
            cursor_ = e.when;
        } else {
            // The far heap's minimum beats (or ties, by seq) the
            // calendar's front, so the merged order stays exact.
            e = far_.top();
            far_.pop();
            cursor_ = e.when;
        }
    }
    size_--;
    popCount_++;
    return e;
}

bool
EventQueue::popBefore(Tick limit, Event &out)
{
    if (size_ == 0 || peekTime() >= limit)
        return false;
    out = pop();
    return true;
}

Tick
EventQueue::peekTime() const
{
    RNUMA_ASSERT(size_ > 0, "peek into empty event queue");
    if (!past_.empty())
        return past_.top().when;
    const Event *n = nearFront();
    if (n && (far_.empty() || eventBefore(*n, far_.top())))
        return n->when;
    return far_.top().when;
}

} // namespace rnuma
