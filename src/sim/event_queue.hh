/**
 * @file
 * The discrete-event engine. CPUs are re-scheduled after every shared
 * resource interaction (L1 miss), so all bus, directory, and network
 * activity is processed in global time order; L1 hits are accumulated
 * arithmetically without events.
 *
 * Two implementations share one contract — pop order is strictly
 * (when, seq), i.e. time order with deterministic FIFO tie-breaking:
 *
 * - EventQueue: the production scheduler, an indexed two-level
 *   structure exploiting the simulator's mostly-monotonic small-delta
 *   event pattern. A calendar of one-tick FIFO buckets covers the
 *   near future [cursor, cursor + window); a hierarchical bitmap over
 *   the buckets finds the next non-empty one in a few word
 *   operations, so schedule and pop are O(1) in the common case.
 *   Events beyond the window (page operations, long barrier jumps)
 *   overflow into a min-heap and are merged back in by comparison at
 *   pop time, which keeps the (when, seq) order exact even when the
 *   same tick holds both calendar and heap events.
 *
 * - HeapEventQueue: the plain std::priority_queue reference
 *   implementation. The unit tests assert the two pop bit-identical
 *   sequences under randomized schedules, and bench_micro measures
 *   the calendar's throughput advantage against it.
 */

#ifndef RNUMA_SIM_EVENT_QUEUE_HH
#define RNUMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** One scheduled event: a CPU resumes at a tick. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0; ///< insertion order: deterministic ties
    std::uint32_t tag = 0; ///< payload (the CPU id)
};

/** Strict (when, seq) order: the one pop order both queues honor. */
inline bool
eventBefore(const Event &a, const Event &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    return a.seq < b.seq;
}

/**
 * Reference min-heap event queue with deterministic tie-breaking.
 * Kept as the ordering oracle for the calendar queue's tests and the
 * baseline for bench_micro's scheduler-throughput comparison.
 */
class HeapEventQueue
{
  public:
    /** Schedule @p tag to run at @p when. */
    void schedule(Tick when, std::uint32_t tag);

    /** Any events pending? */
    bool empty() const { return heap.empty(); }

    /** Pop the earliest event (ties broken by insertion order). */
    Event pop();

    /**
     * Pop the earliest event into @p out iff its tick is strictly
     * below @p limit; returns whether one was popped. The parallel
     * engine's window drain: events at or past the edge stay queued
     * for the next round, so no partition ever runs ahead of the
     * lookahead bound.
     */
    bool popBefore(Tick limit, Event &out);

    /** Tick of the earliest pending event (queue must not be empty). */
    Tick peekTime() const { return heap.top().when; }

    /** Events processed so far. */
    std::uint64_t processed() const { return popCount; }

    /** Events currently pending. */
    std::size_t pending() const { return heap.size(); }

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return eventBefore(b, a);
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    std::uint64_t seqCounter = 0;
    std::uint64_t popCount = 0;
};

/**
 * The production scheduler: a bitmap-indexed calendar of one-tick
 * FIFO buckets over a far-future min-heap (see the file comment).
 * Drop-in API-compatible with HeapEventQueue and bit-identical in
 * pop order.
 */
class EventQueue
{
  public:
    /**
     * @param window calendar span in ticks (one bucket per tick),
     *        rounded up to a power of two, minimum 64. The default
     *        covers the simulator's common event deltas — think
     *        times, bus and remote-fetch latencies, barrier releases
     *        are all well under 1024 cycles — while the rare
     *        multi-thousand-cycle page operations overflow into the
     *        heap. Kept small on purpose: the bucket array is the
     *        hot working set, and 1024 buckets stay cache-resident
     *        where a wider calendar thrashes. Size it up for
     *        workloads with systematically longer deltas (e.g.
     *        slower networks).
     */
    explicit EventQueue(std::size_t window = 1024);

    /**
     * The window for a workload whose common scheduling deltas are
     * bounded by @p typical_max_delta ticks: the smallest power of
     * two covering the span, clamped to [64, 65536]. Window size
     * never affects pop order — only how often events overflow to
     * the far heap — so auto-sizing is bit-identity-safe by
     * construction. The cap keeps pathological spans (page-op-scale
     * deltas belong in the heap) from inflating the bucket array
     * past the cache-resident sizes the calendar is designed for.
     */
    static std::size_t autoWindow(Tick typical_max_delta);

    /** Calendar span actually in use (post-rounding). */
    std::size_t windowSize() const { return window_; }

    /** Schedule @p tag to run at @p when. */
    void schedule(Tick when, std::uint32_t tag);

    /** Any events pending? */
    bool empty() const { return size_ == 0; }

    /** Pop the earliest event (ties broken by insertion order). */
    Event pop();

    /**
     * Pop the earliest event into @p out iff its tick is strictly
     * below @p limit; returns whether one was popped (see
     * HeapEventQueue::popBefore).
     */
    bool popBefore(Tick limit, Event &out);

    /** Tick of the earliest pending event (queue must not be empty). */
    Tick peekTime() const;

    /** Events processed so far. */
    std::uint64_t processed() const { return popCount_; }

    /** Events currently pending. */
    std::size_t pending() const { return size_; }

  private:
    /** A FIFO of same-tick events, drained from head. */
    struct Bucket
    {
        std::vector<Event> ev;
        std::size_t head = 0;
        bool empty() const { return head == ev.size(); }
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return eventBefore(b, a);
        }
    };
    using Heap =
        std::priority_queue<Event, std::vector<Event>, Later>;

    static constexpr std::size_t noHint = ~std::size_t{0};

    /**
     * Index of the first non-empty bucket in circular order from
     * cursor_; only valid when nearCount_ > 0.
     */
    std::size_t nextBucket() const;

    /** Earliest calendar event, or nullptr when the calendar is empty. */
    const Event *nearFront() const;

    std::size_t window_;   ///< calendar span (power of two, >= 64)
    std::size_t bitWords_; ///< window_ / 64
    std::vector<Bucket> near_;        ///< window_ one-tick buckets
    std::vector<std::uint64_t> bits_; ///< non-empty-bucket index
    /**
     * Memo of the earliest non-empty bucket (noHint = recompute).
     * peekTime/pop pairs and runs of same-tick ties then skip the
     * bitmap scan entirely; schedule keeps it coherent by moving it
     * when an earlier event arrives.
     */
    mutable std::size_t hint_ = noHint;
    Heap far_;  ///< events at or beyond cursor_ + window at insert
    Heap past_; ///< events scheduled before cursor_ (API generality;
                ///< the simulator never schedules into the past)
    Tick cursor_ = 0; ///< lower bound of all near/far events
    std::size_t nearCount_ = 0;
    std::size_t size_ = 0;
    std::uint64_t seqCounter_ = 0;
    std::uint64_t popCount_ = 0;
};

} // namespace rnuma

#endif // RNUMA_SIM_EVENT_QUEUE_HH
