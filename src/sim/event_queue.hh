/**
 * @file
 * The discrete-event engine. CPUs are re-scheduled after every shared
 * resource interaction (L1 miss), so all bus, directory, and network
 * activity is processed in global time order; L1 hits are accumulated
 * arithmetically without events.
 */

#ifndef RNUMA_SIM_EVENT_QUEUE_HH
#define RNUMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace rnuma
{

/** One scheduled event: a CPU resumes at a tick. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0; ///< insertion order: deterministic ties
    std::uint32_t tag = 0; ///< payload (the CPU id)
};

/** Min-heap event queue with deterministic tie-breaking. */
class EventQueue
{
  public:
    /** Schedule @p tag to run at @p when. */
    void schedule(Tick when, std::uint32_t tag);

    /** Any events pending? */
    bool empty() const { return heap.empty(); }

    /** Pop the earliest event (ties broken by insertion order). */
    Event pop();

    /** Tick of the earliest pending event (queue must not be empty). */
    Tick peekTime() const { return heap.top().when; }

    /** Events processed so far. */
    std::uint64_t processed() const { return popCount; }

    /** Events currently pending. */
    std::size_t pending() const { return heap.size(); }

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    std::uint64_t seqCounter = 0;
    std::uint64_t popCount = 0;
};

} // namespace rnuma

#endif // RNUMA_SIM_EVENT_QUEUE_HH
